// Command avgserve is a long-running HTTP measurement service over the
// scenario layer: it lists the graph/algorithm registry, runs declarative
// scenario specs synchronously or as polled jobs, and serves cached reports.
// Identical scenario submissions are answered from the result cache with
// byte-identical JSON.
//
// Usage:
//
//	avgserve -addr :8080 -workers 4 -parallelism 2 -cache-size 1024 -cache-dir /var/cache/avgserve
//	avgserve -addr :8080 -fleet            # + avgworker -coordinator http://host:8080
//
// In -fleet mode the server additionally mounts the internal/fleet
// coordinator under /fleet/v1/ and transparently dispatches /v1/run,
// /v1/batch and /v1/campaigns executions across attached avgworker
// processes, falling back to local execution while none are attached.
// Responses are byte-identical either way (see internal/fleet).
//
// Endpoints:
//
//	GET  /healthz                 liveness + cache statistics
//	GET  /v1/metrics              cache hit/miss counters, in-flight jobs, run totals (JSON)
//	GET  /metrics                 the same counters in Prometheus text format
//	GET  /debug/pprof/*           net/http/pprof (-pprof mode)
//	GET  /v1/registry             graph families and algorithms, JSON
//	POST /v1/run                  run a scenario spec synchronously
//	POST /v1/batch                run up to 32 specs; streams NDJSON completions
//	POST /v1/campaigns            run a hypothesis campaign; streams scenario
//	                              completions (campaign order) then the verdict report
//	POST /v1/jobs                 submit a scenario, returns a job id
//	GET  /v1/jobs/{id}            poll job status
//	GET  /v1/jobs/{id}/result     fetch a finished job's report
//	GET  /v1/reports/{key}        fetch a cached report by scenario key
//	POST /fleet/v1/*              worker protocol (-fleet mode; see internal/fleet)
//	GET  /fleet/v1/stats          coordinator queue/worker snapshot (-fleet mode)
//
// Example:
//
//	curl -s localhost:8080/v1/run -d '{"graph":"regular","params":{"n":1024,"d":6},"algorithm":"mis/luby","trials":5,"seed":1}'
//	curl -sN localhost:8080/v1/campaigns -d @campaigns/paper.json
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"avgloc/internal/fleet"
	"avgloc/internal/graphstore"
	"avgloc/internal/resultstore"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "avgserve:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 4, "concurrent scenario executions")
	parallelism := flag.Int("parallelism", 1, "per-scenario worker budget over sweep rows and trials (bit-identical at any level)")
	cacheSize := flag.Int("cache-size", 1024, "in-memory result cache entries")
	cacheDir := flag.String("cache-dir", "", "optional directory for persistent result cache")
	graphCacheDir := flag.String("graph-cache-dir", "", "optional directory for persistent graph artifacts (content-addressed CSR files; a warm dir reruns sweeps with zero generator invocations)")
	graphCacheMB := flag.Int("graph-cache-mb", 256, "in-memory graph store budget in MiB")
	fleetMode := flag.Bool("fleet", false, "mount the fleet coordinator and dispatch runs across attached avgworkers")
	chunkTrials := flag.Int("fleet-chunk-trials", fleet.DefaultChunkTrials, "trials per dispatched chunk (stable sharding; chunk-cache keys depend on it)")
	heartbeat := flag.Duration("fleet-heartbeat", fleet.DefaultHeartbeatTimeout, "lease expiry without a worker heartbeat; silent workers deregister after twice this")
	stealAfter := flag.Duration("fleet-steal-after", fleet.DefaultStealAfter, "lease age before an idle worker may duplicate a straggling chunk")
	requestTimeout := flag.Duration("request-timeout", 0, "per-request execution deadline, queue wait included (0 = unbounded)")
	breakerThreshold := flag.Int("breaker-threshold", fleet.DefaultBreakerThreshold, "consecutive fleet failures before dispatch trips to local execution")
	breakerCooldown := flag.Duration("breaker-cooldown", fleet.DefaultBreakerCooldown, "how long a tripped breaker routes around the fleet before re-probing")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown bound for in-flight requests on SIGTERM/SIGINT")
	traceDir := flag.String("trace-dir", "", "write a flight-recorder trace artifact per executed run into this directory (read with avgtrace)")
	pprofFlag := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	flag.Parse()

	store, err := resultstore.New(*cacheSize, *cacheDir)
	if err != nil {
		return err
	}
	graphs, err := graphstore.New(int64(*graphCacheMB)<<20, *graphCacheDir)
	if err != nil {
		return err
	}
	if *traceDir != "" {
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			return fmt.Errorf("creating -trace-dir: %w", err)
		}
	}
	cfg := serverConfig{
		store:            store,
		graphs:           graphs,
		workers:          *workers,
		par:              *parallelism,
		requestTimeout:   *requestTimeout,
		breakerThreshold: *breakerThreshold,
		breakerCooldown:  *breakerCooldown,
		traceDir:         *traceDir,
		pprof:            *pprofFlag,
	}
	if cfg.workers < 1 {
		cfg.workers = 1
	}
	if *fleetMode {
		cfg.coord = fleet.NewCoordinator(fleet.Config{
			ChunkTrials:      *chunkTrials,
			HeartbeatTimeout: *heartbeat,
			StealAfter:       *stealAfter,
			Store:            store,
			Logf:             log.Printf,
		})
	}
	srv := newServerCfg(cfg)
	log.Printf("avgserve: listening on %s (workers=%d parallelism=%d cache=%d dir=%q graph-dir=%q fleet=%v timeout=%v trace=%q pprof=%v)",
		*addr, *workers, *parallelism, *cacheSize, *cacheDir, *graphCacheDir, *fleetMode, *requestTimeout, *traceDir, *pprofFlag)

	// Graceful drain on SIGTERM/SIGINT: stop accepting, let in-flight
	// requests (and their fleet chunks) finish within -drain-timeout, then
	// exit. A second signal aborts immediately.
	httpSrv := &http.Server{Addr: *addr, Handler: srv}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
		stop() // restore default handling: a second signal kills the process
		log.Printf("avgserve: draining (bound %v)", *drainTimeout)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			return fmt.Errorf("drain: %w", err)
		}
		log.Printf("avgserve: drained cleanly")
		if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}
