package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"

	"avgloc/internal/resultstore"
)

// promValue extracts one un-labelled series value from a Prometheus text
// exposition body.
func promValue(t *testing.T, body, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("bad sample %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not in exposition:\n%s", name, body)
	return 0
}

// TestPrometheusEndpoint: GET /metrics serves Prometheus text whose
// counters agree with the legacy /v1/metrics JSON after real traffic.
func TestPrometheusEndpoint(t *testing.T) {
	ts := newTestServer(t, "")
	post(t, ts.URL+"/v1/run", specJSON)
	post(t, ts.URL+"/v1/run", specJSON) // repeat: a cached run

	resp, raw := get(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body := string(raw)
	if !strings.Contains(body, "# TYPE avg_runs_completed_total counter") {
		t.Fatalf("missing TYPE line:\n%s", body)
	}

	_, jraw := get(t, ts.URL+"/v1/metrics")
	var m metrics
	if err := json.Unmarshal(jraw, &m); err != nil {
		t.Fatal(err)
	}
	pairs := []struct {
		prom string
		json int64
	}{
		{"avg_jobs_total", m.JobsTotal},
		{"avg_runs_completed_total", m.RunsCompleted},
		{"avg_runs_cached_total", m.RunsCached},
		{"avg_store_hits_total", m.Store.Hits},
		{"avg_store_misses_total", m.Store.Misses},
		{"avg_store_puts_total", m.Store.Puts},
	}
	for _, p := range pairs {
		if got := promValue(t, body, p.prom); int64(got) != p.json {
			t.Errorf("%s = %v, JSON says %d", p.prom, got, p.json)
		}
	}
	if m.RunsCompleted != 1 || m.RunsCached != 1 {
		t.Fatalf("unexpected traffic: %+v", m)
	}
	if got := promValue(t, body, "avg_run_seconds_count"); got != 1 {
		t.Errorf("avg_run_seconds_count = %v, want 1 (one executed run)", got)
	}
}

// TestMetricsHammer drives both metrics endpoints from many goroutines
// while a concurrent batch executes — under -race this is the atomicity
// audit of every migrated counter.
func TestMetricsHammer(t *testing.T) {
	ts := newTestServer(t, "")

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				get(t, ts.URL+"/v1/metrics")
				get(t, ts.URL+"/metrics")
			}
		}()
	}
	var specs []string
	for i := 0; i < 6; i++ {
		specs = append(specs, fmt.Sprintf(`{"graph":"cycle","params":{"n":32},"algorithm":"mis/luby","trials":2,"seed":%d}`, i))
	}
	batch := `{"specs":[` + strings.Join(specs, ",") + `]}`
	for round := 0; round < 3; round++ {
		resp, body := post(t, ts.URL+"/v1/batch", batch)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("batch: status %d: %s", resp.StatusCode, body)
		}
	}
	close(stop)
	wg.Wait()

	_, jraw := get(t, ts.URL+"/v1/metrics")
	var m metrics
	if err := json.Unmarshal(jraw, &m); err != nil {
		t.Fatal(err)
	}
	// 6 unique specs executed once; rounds 2 and 3 were cache hits.
	if m.RunsCompleted != 6 {
		t.Fatalf("runs_completed = %d, want 6 (%+v)", m.RunsCompleted, m)
	}
	if m.RunsCached != 12 {
		t.Fatalf("runs_cached = %d, want 12 (%+v)", m.RunsCached, m)
	}
}

// TestTraceDirByteIdentity: a traced server serves byte-identical results
// to an untraced one and leaves a readable artifact behind.
func TestTraceDirByteIdentity(t *testing.T) {
	plain := newTestServer(t, "")
	_, want := post(t, plain.URL+"/v1/run", specJSON)

	dir := t.TempDir()
	store, err := resultstore.New(64, "")
	if err != nil {
		t.Fatal(err)
	}
	traced := httptest.NewServer(newServerCfg(serverConfig{store: store, workers: 2, par: 2, traceDir: dir}))
	t.Cleanup(traced.Close)
	resp, got := post(t, traced.URL+"/v1/run", specJSON)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traced run: status %d: %s", resp.StatusCode, got)
	}
	if string(got) != string(want) {
		t.Fatalf("traced response differs from untraced")
	}

	files, err := filepath.Glob(filepath.Join(dir, "*.trace.ndjson"))
	if err != nil || len(files) != 1 {
		t.Fatalf("trace artifacts = %v (err %v), want exactly one", files, err)
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 3 {
		t.Fatalf("artifact too small: %d lines", len(lines))
	}
	var header struct {
		Type string `json:"type"`
		Name string `json:"name"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &header); err != nil || header.Type != "trace" || header.Name != "avgserve.job" {
		t.Fatalf("bad header %q (err %v)", lines[0], err)
	}
	found := map[string]bool{}
	for _, l := range lines[1:] {
		var rec struct {
			Name string `json:"name"`
		}
		if err := json.Unmarshal([]byte(l), &rec); err != nil {
			t.Fatalf("bad line %q: %v", l, err)
		}
		found[rec.Name] = true
	}
	for _, want := range []string{"request", "scenario.run", "scenario.row", "store.put"} {
		if !found[want] {
			t.Errorf("artifact missing %s span (have %v)", want, found)
		}
	}
}

// TestPprofMounting: /debug/pprof/ is 404 by default and served with the
// pprof option on.
func TestPprofMounting(t *testing.T) {
	off := newTestServer(t, "")
	resp, _ := get(t, off.URL+"/debug/pprof/")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof off: status %d, want 404", resp.StatusCode)
	}

	store, err := resultstore.New(64, "")
	if err != nil {
		t.Fatal(err)
	}
	on := httptest.NewServer(newServerCfg(serverConfig{store: store, workers: 1, par: 1, pprof: true}))
	t.Cleanup(on.Close)
	resp, body := get(t, on.URL+"/debug/pprof/")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Fatalf("pprof on: status %d body %.80s", resp.StatusCode, body)
	}
}
