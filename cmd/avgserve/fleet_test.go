package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"avgloc/internal/fleet"
	"avgloc/internal/resultstore"
)

// newFleetServer returns an avgserve in -fleet mode with fast timeouts,
// plus its coordinator for assertions.
func newFleetServer(t *testing.T) (*httptest.Server, *fleet.Coordinator) {
	t.Helper()
	store, err := resultstore.New(64, "")
	if err != nil {
		t.Fatal(err)
	}
	coord := fleet.NewCoordinator(fleet.Config{
		ChunkTrials:      2,
		HeartbeatTimeout: 250 * time.Millisecond,
		StealAfter:       100 * time.Millisecond,
		PollInterval:     10 * time.Millisecond,
		Store:            store,
	})
	ts := httptest.NewServer(newServerCfg(serverConfig{store: store, workers: 2, par: 2, coord: coord}))
	t.Cleanup(ts.Close)
	return ts, coord
}

func startFleetWorkers(t *testing.T, base string, n int) func() {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		w := &fleet.Worker{Base: base, Name: "test", Parallelism: 2, Poll: 5 * time.Millisecond}
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.Run(ctx)
		}()
	}
	stop := func() {
		cancel()
		wg.Wait()
	}
	t.Cleanup(stop)
	return stop
}

const fleetSpecJSON = `{"graph":"cycle","algorithm":"mis/luby","trials":5,"seed":9,"sweep":{"param":"n","values":[24,40]}}`

// TestFleetModeMatchesLocalServer: the same spec served by a plain server
// and by a fleet server with two attached workers returns byte-identical
// JSON, and the fleet server really dispatched (runs_fleet, per-worker
// chunk counters move).
func TestFleetModeMatchesLocalServer(t *testing.T) {
	plain := newTestServer(t, "")
	resp, localBody := post(t, plain.URL+"/v1/run", fleetSpecJSON)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("local run: status %d: %s", resp.StatusCode, localBody)
	}

	ts, coord := newFleetServer(t)
	startFleetWorkers(t, ts.URL, 2)
	deadline := time.Now().Add(5 * time.Second)
	for coord.Workers() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d workers registered", coord.Workers())
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, fleetBody := post(t, ts.URL+"/v1/run", fleetSpecJSON)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fleet run: status %d: %s", resp.StatusCode, fleetBody)
	}
	if !bytes.Equal(fleetBody, localBody) {
		t.Fatalf("fleet response differs from local response\nfleet:\n%s\nlocal:\n%s", fleetBody, localBody)
	}

	resp, body := get(t, ts.URL+"/v1/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: status %d", resp.StatusCode)
	}
	var m metrics
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("metrics decode: %v\n%s", err, body)
	}
	if m.RunsFleet != 1 {
		t.Fatalf("runs_fleet = %d, want 1\n%s", m.RunsFleet, body)
	}
	if m.FleetWorkers != 2 || m.Fleet == nil || len(m.Fleet.Workers) != 2 {
		t.Fatalf("fleet worker count missing from metrics: %s", body)
	}
	var chunks int64
	for _, w := range m.Fleet.Workers {
		chunks += w.ChunksCompleted
	}
	if chunks == 0 || m.Fleet.ChunksCompleted == 0 {
		t.Fatalf("per-worker chunk counters did not move: %s", body)
	}
	if m.QueueCap == 0 {
		t.Fatalf("queue_cap missing from metrics: %s", body)
	}
}

// TestFleetModeFallsBackWithoutWorkers: -fleet with nobody attached must
// behave exactly like a local server.
func TestFleetModeFallsBackWithoutWorkers(t *testing.T) {
	plain := newTestServer(t, "")
	_, localBody := post(t, plain.URL+"/v1/run", fleetSpecJSON)

	ts, _ := newFleetServer(t)
	resp, body := post(t, ts.URL+"/v1/run", fleetSpecJSON)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if !bytes.Equal(body, localBody) {
		t.Fatalf("workerless fleet server differs from local server")
	}
	_, mbody := get(t, ts.URL+"/v1/metrics")
	var m metrics
	if err := json.Unmarshal(mbody, &m); err != nil {
		t.Fatal(err)
	}
	if m.RunsFleet != 0 || m.RunsCompleted != 1 {
		t.Fatalf("workerless fleet run should execute locally: %s", mbody)
	}
}

// TestQueueFullReturns503RetryAfter: a full dispatch queue answers 503
// with a Retry-After hint instead of blocking the handler. The server is
// built with zero pool workers so nothing drains and the overload path is
// deterministic.
func TestQueueFullReturns503RetryAfter(t *testing.T) {
	store, err := resultstore.New(64, "")
	if err != nil {
		t.Fatal(err)
	}
	srv := newServerCfg(serverConfig{store: store, workers: 0, par: 1, queueCap: 1})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	// First submit occupies the only queue slot (async endpoint: it
	// accepts without waiting for execution).
	resp, body := post(t, ts.URL+"/v1/jobs", specJSON)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: status %d: %s", resp.StatusCode, body)
	}
	// A second, distinct spec must be rejected retryably.
	other := strings.Replace(specJSON, `"seed":5`, `"seed":6`, 1)
	resp, body = post(t, ts.URL+"/v1/jobs", other)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overflow submit: status %d, want 503: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatalf("503 without Retry-After header")
	}
	_, mbody := get(t, ts.URL+"/v1/metrics")
	var m metrics
	if err := json.Unmarshal(mbody, &m); err != nil {
		t.Fatal(err)
	}
	if m.QueueDepth != 1 || m.QueueCap != 1 {
		t.Fatalf("queue depth/cap not exposed: %s", mbody)
	}
}

// TestFleetCampaignSharedBudget: a campaign on a fleet server dispatches
// every scenario through the one coordinator (shared fleet budget) and
// produces the same NDJSON stream as a local server.
func TestFleetCampaignSharedBudget(t *testing.T) {
	campaignJSON := `{"name":"fleet-camp","scenarios":[
		{"name":"rand","spec":{"graph":"cycle","algorithm":"mis/luby","trials":2,"seed":7,
			"sweep":{"param":"n","values":[24,36,48]}},
			"hypothesis":{"measure":"node_avg","expect":"log","compare_to":"det","op":"le","ratio":10}},
		{"name":"det","spec":{"graph":"cycle","algorithm":"mis/det-coloring","trials":1,"seed":7,
			"sweep":{"param":"n","values":[24,36,48]}}}]}`

	plain := newTestServer(t, "")
	resp, localBody := post(t, plain.URL+"/v1/campaigns", campaignJSON)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("local campaign: status %d: %s", resp.StatusCode, localBody)
	}

	ts, coord := newFleetServer(t)
	startFleetWorkers(t, ts.URL, 2)
	deadline := time.Now().Add(5 * time.Second)
	for coord.Workers() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("workers did not register")
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp, fleetBody := post(t, ts.URL+"/v1/campaigns", campaignJSON)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fleet campaign: status %d: %s", resp.StatusCode, fleetBody)
	}
	if !bytes.Equal(fleetBody, localBody) {
		t.Fatalf("fleet campaign stream differs from local\nfleet:\n%s\nlocal:\n%s", fleetBody, localBody)
	}
	if st := coord.Stats(); st.ChunksCompleted == 0 {
		t.Fatalf("campaign did not dispatch through the fleet: %+v", st)
	}
	_, mbody := get(t, ts.URL+"/v1/metrics")
	var m metrics
	if err := json.Unmarshal(mbody, &m); err != nil {
		t.Fatal(err)
	}
	if m.RunsFleet != 2 {
		t.Fatalf("runs_fleet = %d, want 2 (both campaign scenarios): %s", m.RunsFleet, mbody)
	}
}
