// Command avgworker is a stateless fleet worker: it registers with an
// avgserve coordinator running in -fleet mode, pulls trial-range chunks of
// scenario specs, executes them through the registry/scenario machinery,
// and streams the per-trial partials back. Any number of workers may join
// or leave at any time; the merged results are byte-identical to a
// single-process run regardless (see internal/fleet).
//
// Usage:
//
//	avgworker -coordinator http://127.0.0.1:8080 -parallelism 4
//
// The worker retries while the coordinator is unreachable (exponential
// backoff with seeded jitter) and re-registers transparently after a
// coordinator restart, so start order does not matter. SIGINT/SIGTERM
// drain it gracefully: the chunk in flight finishes and uploads (bounded
// by -drain-grace), then the worker deregisters so the coordinator
// requeues nothing. A second signal aborts immediately.
//
// -chaos-plan injects deterministic transport faults (internal/chaos) into
// every coordinator round-trip — the process-level leg of the chaos soak.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"

	"avgloc/internal/chaos"
	"avgloc/internal/fleet"
	"avgloc/internal/graphstore"
	"avgloc/internal/obs"
)

func main() {
	if err := run(); err != nil && err != context.Canceled {
		fmt.Fprintln(os.Stderr, "avgworker:", err)
		os.Exit(1)
	}
}

func run() error {
	coordinator := flag.String("coordinator", "http://127.0.0.1:8080", "avgserve -fleet base URL")
	name := flag.String("name", "", "worker label shown in fleet stats (default host-pid)")
	parallelism := flag.Int("parallelism", runtime.GOMAXPROCS(0), "per-chunk trial fan-out (no effect on merged bytes)")
	poll := flag.Duration("poll", 0, "idle re-poll interval (0 = coordinator-advertised)")
	drainGrace := flag.Duration("drain-grace", fleet.DefaultDrainGrace, "post-SIGTERM window for finishing and uploading the chunk in flight")
	graphCacheDir := flag.String("graph-cache-dir", "", "optional directory for persistent graph artifacts (graphs also persist in memory across chunks without it)")
	chaosPlan := flag.String("chaos-plan", "", "JSON fault plan (internal/chaos); injects deterministic transport faults into coordinator round-trips")
	chaosSeed := flag.Uint64("chaos-seed", 1, "fault-injection stream seed (with -chaos-plan)")
	tracePath := flag.String("trace", "", "write a flight-recorder trace artifact (NDJSON, read with avgtrace): one chunk.execute/chunk.upload span pair per leased chunk")
	flag.Parse()

	label := *name
	if label == "" {
		host, _ := os.Hostname()
		label = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		// After the first signal starts the drain, restore default signal
		// handling so a second SIGTERM/SIGINT kills the process immediately.
		<-ctx.Done()
		stop()
	}()

	w := &fleet.Worker{
		Base:        *coordinator,
		Name:        label,
		Parallelism: *parallelism,
		Poll:        *poll,
		DrainGrace:  *drainGrace,
		Logf:        log.Printf,
	}
	if *graphCacheDir != "" {
		graphs, err := graphstore.New(0, *graphCacheDir)
		if err != nil {
			return err
		}
		w.Graphs = graphs
		log.Printf("avgworker: graph artifact cache at %s", *graphCacheDir)
	}
	if *tracePath != "" {
		tracer, err := obs.Create(*tracePath, "avgworker", obs.A("worker", label))
		if err != nil {
			return err
		}
		w.Trace = tracer
		defer func() {
			if err := tracer.Close(); err != nil {
				log.Printf("avgworker: closing trace: %v", err)
			}
			log.Printf("avgworker: trace: %d lines -> %s", tracer.Lines(), *tracePath)
		}()
	}
	if *chaosPlan != "" {
		data, err := os.ReadFile(*chaosPlan)
		if err != nil {
			return err
		}
		var plan chaos.Plan
		if err := json.Unmarshal(data, &plan); err != nil {
			return fmt.Errorf("parsing %s: %w", *chaosPlan, err)
		}
		inj, err := chaos.New(plan, *chaosSeed)
		if err != nil {
			return err
		}
		w.Client = &http.Client{Transport: inj.Transport(nil)}
		w.Seed = *chaosSeed
		defer func() {
			st := inj.Stats()
			data, _ := json.Marshal(st)
			log.Printf("avgworker: chaos stats: %s", data)
		}()
		log.Printf("avgworker: chaos plan %s (seed %d) armed", *chaosPlan, *chaosSeed)
	}
	log.Printf("avgworker: %s -> %s (parallelism=%d poll=%v drain-grace=%v)", label, *coordinator, *parallelism, *poll, *drainGrace)
	err := w.Run(ctx)
	if err == context.Canceled {
		log.Printf("avgworker: drained cleanly")
	}
	return err
}
