// Command avgworker is a stateless fleet worker: it registers with an
// avgserve coordinator running in -fleet mode, pulls trial-range chunks of
// scenario specs, executes them through the registry/scenario machinery,
// and streams the per-trial partials back. Any number of workers may join
// or leave at any time; the merged results are byte-identical to a
// single-process run regardless (see internal/fleet).
//
// Usage:
//
//	avgworker -coordinator http://127.0.0.1:8080 -parallelism 4
//
// The worker retries while the coordinator is unreachable and
// re-registers transparently after a coordinator restart, so start order
// does not matter. SIGINT/SIGTERM stop it; chunks it held simply requeue
// once their heartbeats lapse.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"syscall"

	"avgloc/internal/fleet"
)

func main() {
	if err := run(); err != nil && err != context.Canceled {
		fmt.Fprintln(os.Stderr, "avgworker:", err)
		os.Exit(1)
	}
}

func run() error {
	coordinator := flag.String("coordinator", "http://127.0.0.1:8080", "avgserve -fleet base URL")
	name := flag.String("name", "", "worker label shown in fleet stats (default host-pid)")
	parallelism := flag.Int("parallelism", runtime.GOMAXPROCS(0), "per-chunk trial fan-out (no effect on merged bytes)")
	poll := flag.Duration("poll", 0, "idle re-poll interval (0 = coordinator-advertised)")
	flag.Parse()

	label := *name
	if label == "" {
		host, _ := os.Hostname()
		label = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	w := &fleet.Worker{
		Base:        *coordinator,
		Name:        label,
		Parallelism: *parallelism,
		Poll:        *poll,
		Logf:        log.Printf,
	}
	log.Printf("avgworker: %s -> %s (parallelism=%d poll=%v)", label, *coordinator, *parallelism, *poll)
	return w.Run(ctx)
}
