package main

import (
	"bytes"
	"encoding/json"

	"avgloc/internal/load"
	"avgloc/internal/twin"
)

// artifactType probes the first NDJSON line's type field, dispatching
// between trace artifacts (internal/obs) and load artifacts
// (internal/load) — both share the typed-header convention.
func artifactType(data []byte) string {
	line := data
	if i := bytes.IndexByte(data, '\n'); i >= 0 {
		line = data[:i]
	}
	var probe struct {
		Type string `json:"type"`
	}
	if json.Unmarshal(line, &probe) != nil {
		return ""
	}
	return probe.Type
}

// renderLoad renders a load artifact: the per-phase latency waterfall —
// window p99 bars per endpoint, so the load shape and the latency
// response read together — followed by the SLO verdicts.
func renderLoad(data []byte) (string, error) {
	art, err := load.ReadArtifact(bytes.NewReader(data))
	if err != nil {
		return "", err
	}
	return load.RenderWaterfall(art), nil
}

// renderTwin renders a twin artifact (avgcampaign -twin-out): per sweep,
// measured-vs-predicted bars per row with the worst-deviating row flagged.
func renderTwin(data []byte) (string, error) {
	art, err := twin.ReadArtifact(bytes.NewReader(data))
	if err != nil {
		return "", err
	}
	return twin.Render(art), nil
}
