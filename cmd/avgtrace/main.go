// Command avgtrace reads a flight-recorder trace artifact (NDJSON, written
// by internal/obs via avgserve -trace-dir, avgcampaign -trace, avgworker
// -trace or avgchaos -trace) and prints what happened: a per-stage summary,
// a span waterfall, the chunk timeline of fleet runs (leases, steals,
// requeues, completions), and the critical path. A chaos soak or fleet
// campaign is debuggable from its artifact alone — no live process needed.
//
// It also reads load artifacts (NDJSON written by avgload) — the
// per-phase latency waterfall and SLO verdict table — and twin artifacts
// (NDJSON written by avgcampaign -twin-out): for those it plots measured
// vs predicted per sweep row with the worst-deviating row flagged. Any
// other header type is a one-line error, never a misrendered guess.
//
// Usage:
//
//	avgtrace run.trace.ndjson
//	avgtrace -waterfall=false -chunks=false run.trace.ndjson   # summary only
//	avgtrace load.ndjson                                       # load artifact
//	avgtrace paper-twin.ndjson                                 # twin artifact
//	cat run.trace.ndjson | avgtrace -
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"avgloc/internal/obs"
)

func main() {
	waterfall := flag.Bool("waterfall", true, "print the span waterfall")
	chunks := flag.Bool("chunks", true, "print the fleet chunk timeline")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: avgtrace [-waterfall] [-chunks] <artifact.ndjson | ->")
		os.Exit(2)
	}
	var in io.Reader = os.Stdin
	if name := flag.Arg(0); name != "-" {
		f, err := os.Open(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "avgtrace:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	data, err := io.ReadAll(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "avgtrace:", err)
		os.Exit(1)
	}
	out, err := render(data, *waterfall, *chunks)
	if err != nil {
		fmt.Fprintln(os.Stderr, "avgtrace:", err)
		os.Exit(1)
	}
	fmt.Print(out)
}

// render dispatches on the artifact's typed header. Every artifact the
// repo writes (internal/obs traces, internal/load runs, internal/twin
// evaluations) shares the NDJSON typed-header convention; a header type
// this binary does not know is an explicit error — falling through to the
// trace renderer would misread the artifact as an empty trace.
func render(data []byte, waterfall, chunks bool) (string, error) {
	switch typ := artifactType(data); typ {
	case "load":
		return renderLoad(data)
	case "twin":
		return renderTwin(data)
	case "", "trace", "span", "event":
		// Trace line types — including a truncated artifact that lost its
		// header — fall through to the trace reader, whose errors name the
		// problem ("artifact has no trace header line").
	default:
		return "", fmt.Errorf("unknown artifact header type %q (known: load, trace, twin)", typ)
	}
	tr, err := readTrace(bytes.NewReader(data))
	if err != nil {
		return "", err
	}
	a := analyze(tr)
	var b strings.Builder
	b.WriteString(renderSummary(a))
	if waterfall {
		b.WriteString(renderWaterfall(a))
	}
	if chunks && len(a.Chunks) > 0 {
		b.WriteString(renderChunks(a))
	}
	b.WriteString(renderCriticalPath(a))
	return b.String(), nil
}

// trace is a parsed artifact.
type trace struct {
	header obs.Line
	spans  []obs.Line
	events []obs.Line
}

// readTrace parses an NDJSON artifact. Unknown line types are skipped so
// newer artifacts stay readable; a missing header is an error.
func readTrace(r io.Reader) (*trace, error) {
	tr := &trace{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	n := 0
	for sc.Scan() {
		n++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var l obs.Line
		if err := json.Unmarshal([]byte(text), &l); err != nil {
			return nil, fmt.Errorf("line %d: %w", n, err)
		}
		switch l.Type {
		case "trace":
			tr.header = l
		case "span":
			tr.spans = append(tr.spans, l)
		case "event":
			tr.events = append(tr.events, l)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if tr.header.Type == "" {
		return nil, fmt.Errorf("artifact has no trace header line")
	}
	return tr, nil
}

// stageAgg aggregates one span name.
type stageAgg struct {
	Name    string
	Count   int
	TotalUS int64
	MinUS   int64
	MaxUS   int64
}

// chunkLease is one lease/steal of a chunk as seen by the coordinator.
type chunkLease struct {
	AtUS   int64
	Worker string
	Stolen bool
}

// chunkInfo is the reconstructed lifecycle of one fleet chunk.
type chunkInfo struct {
	ID          string
	Row         int
	Lo, Hi      int
	QueuedUS    int64 // -1 when unseen
	Leases      []chunkLease
	Requeues    int
	CompletedUS int64 // -1 while incomplete
	CompletedBy string
	ErrorMsg    string
	Duplicates  int
	Lost        bool
}

// analysis is everything the renderers need, exposed for tests.
type analysis struct {
	Name    string
	Start   string
	EndUS   int64 // max at+dur over spans, max at over events
	Spans   int
	Events  int
	Stages  []stageAgg
	Roots   []*node
	Chunks  []*chunkInfo
	ByTime  []*node // every span node ordered by start time
	nodeByI map[uint64]*node
}

// node is one span in the reconstructed tree.
type node struct {
	Line     obs.Line
	Children []*node
}

func attrString(l obs.Line, key string) string {
	if v, ok := l.Attrs[key]; ok {
		return fmt.Sprintf("%v", v)
	}
	return ""
}

func attrInt(l obs.Line, key string) int {
	if v, ok := l.Attrs[key].(float64); ok {
		return int(v)
	}
	return -1
}

// analyze reconstructs the span tree, per-stage aggregates and the chunk
// timeline from a parsed artifact.
func analyze(tr *trace) *analysis {
	a := &analysis{
		Name:    tr.header.Name,
		Start:   tr.header.Start,
		Spans:   len(tr.spans),
		Events:  len(tr.events),
		nodeByI: make(map[uint64]*node, len(tr.spans)),
	}

	stages := make(map[string]*stageAgg)
	for _, sp := range tr.spans {
		if end := sp.AtUS + sp.DurUS; end > a.EndUS {
			a.EndUS = end
		}
		ag := stages[sp.Name]
		if ag == nil {
			ag = &stageAgg{Name: sp.Name, MinUS: sp.DurUS}
			stages[sp.Name] = ag
		}
		ag.Count++
		ag.TotalUS += sp.DurUS
		if sp.DurUS < ag.MinUS {
			ag.MinUS = sp.DurUS
		}
		if sp.DurUS > ag.MaxUS {
			ag.MaxUS = sp.DurUS
		}
		a.nodeByI[sp.ID] = &node{Line: sp}
	}
	for _, ag := range stages {
		a.Stages = append(a.Stages, *ag)
	}
	sort.Slice(a.Stages, func(i, j int) bool { return a.Stages[i].TotalUS > a.Stages[j].TotalUS })

	for _, n := range a.nodeByI {
		if p := a.nodeByI[n.Line.Parent]; n.Line.Parent != 0 && p != nil {
			p.Children = append(p.Children, n)
		} else {
			a.Roots = append(a.Roots, n)
		}
		a.ByTime = append(a.ByTime, n)
	}
	byStart := func(ns []*node) {
		sort.Slice(ns, func(i, j int) bool {
			if ns[i].Line.AtUS != ns[j].Line.AtUS {
				return ns[i].Line.AtUS < ns[j].Line.AtUS
			}
			return ns[i].Line.ID < ns[j].Line.ID
		})
	}
	byStart(a.Roots)
	byStart(a.ByTime)
	for _, n := range a.nodeByI {
		byStart(n.Children)
	}

	chunks := make(map[string]*chunkInfo)
	chunkOf := func(ev obs.Line) *chunkInfo {
		id := attrString(ev, "chunk")
		if id == "" {
			return nil
		}
		c := chunks[id]
		if c == nil {
			c = &chunkInfo{ID: id, Row: -1, Lo: -1, Hi: -1, QueuedUS: -1, CompletedUS: -1}
			chunks[id] = c
		}
		if r := attrInt(ev, "row"); r >= 0 {
			c.Row = r
		}
		if lo := attrInt(ev, "lo"); lo >= 0 {
			c.Lo = lo
		}
		if hi := attrInt(ev, "hi"); hi >= 0 {
			c.Hi = hi
		}
		return c
	}
	for _, ev := range tr.events {
		if ev.AtUS > a.EndUS {
			a.EndUS = ev.AtUS
		}
		c := chunkOf(ev)
		if c == nil {
			continue
		}
		switch ev.Name {
		case "chunk.queued":
			c.QueuedUS = ev.AtUS
		case "chunk.lease":
			c.Leases = append(c.Leases, chunkLease{AtUS: ev.AtUS, Worker: attrString(ev, "worker")})
		case "chunk.steal":
			c.Leases = append(c.Leases, chunkLease{AtUS: ev.AtUS, Worker: attrString(ev, "worker"), Stolen: true})
		case "chunk.requeue":
			c.Requeues++
		case "chunk.complete":
			c.CompletedUS = ev.AtUS
			c.CompletedBy = attrString(ev, "worker")
		case "chunk.error":
			c.CompletedUS = ev.AtUS
			c.CompletedBy = attrString(ev, "worker")
			c.ErrorMsg = attrString(ev, "error")
		case "chunk.duplicate":
			c.Duplicates++
		case "chunk.lost":
			c.Lost = true
		}
	}
	for _, c := range chunks {
		a.Chunks = append(a.Chunks, c)
	}
	sort.Slice(a.Chunks, func(i, j int) bool {
		ci, cj := a.Chunks[i], a.Chunks[j]
		if ci.Row != cj.Row {
			return ci.Row < cj.Row
		}
		if ci.Lo != cj.Lo {
			return ci.Lo < cj.Lo
		}
		return ci.ID < cj.ID
	})
	return a
}

func us(v int64) string {
	return time.Duration(v * int64(time.Microsecond)).Round(100 * time.Microsecond).String()
}

func renderSummary(a *analysis) string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s (start %s)\n", a.Name, a.Start)
	fmt.Fprintf(&b, "spans %d, events %d, duration %s\n\n", a.Spans, a.Events, us(a.EndUS))
	if len(a.Stages) == 0 {
		return b.String()
	}
	nameW := len("stage")
	for _, st := range a.Stages {
		if len(st.Name) > nameW {
			nameW = len(st.Name)
		}
	}
	fmt.Fprintf(&b, "%-*s  %6s  %10s  %10s  %10s\n", nameW, "stage", "count", "total", "min", "max")
	for _, st := range a.Stages {
		fmt.Fprintf(&b, "%-*s  %6d  %10s  %10s  %10s\n", nameW, st.Name, st.Count, us(st.TotalUS), us(st.MinUS), us(st.MaxUS))
	}
	b.WriteString("\n")
	return b.String()
}

// spanLabel picks the identifying attributes worth showing inline.
func spanLabel(l obs.Line) string {
	var parts []string
	for _, k := range []string{"key", "name", "row", "chunk", "worker", "hit", "cached", "error"} {
		if v, ok := l.Attrs[k]; ok {
			sv := fmt.Sprintf("%v", v)
			if k == "key" && len(sv) > 12 {
				sv = sv[:12] + "…"
			}
			parts = append(parts, fmt.Sprintf("%s=%s", k, sv))
		}
	}
	if len(parts) == 0 {
		return ""
	}
	return " " + strings.Join(parts, " ")
}

func renderWaterfall(a *analysis) string {
	var b strings.Builder
	b.WriteString("waterfall:\n")
	var walk func(n *node, depth int)
	walk = func(n *node, depth int) {
		fmt.Fprintf(&b, "  %10s  %10s  %s%s%s\n",
			"+"+us(n.Line.AtUS), us(n.Line.DurUS), strings.Repeat("  ", depth), n.Line.Name, spanLabel(n.Line))
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	for _, r := range a.Roots {
		walk(r, 0)
	}
	b.WriteString("\n")
	return b.String()
}

func renderChunks(a *analysis) string {
	var b strings.Builder
	b.WriteString("chunk timeline:\n")
	for _, c := range a.Chunks {
		var parts []string
		if c.QueuedUS >= 0 {
			parts = append(parts, fmt.Sprintf("queued +%s", us(c.QueuedUS)))
		}
		steals := 0
		for _, l := range c.Leases {
			verb := "leased"
			if l.Stolen {
				verb = "stolen"
				steals++
			}
			parts = append(parts, fmt.Sprintf("%s +%s→%s", verb, us(l.AtUS), l.Worker))
		}
		if c.Requeues > 0 {
			parts = append(parts, fmt.Sprintf("requeued ×%d", c.Requeues))
		}
		switch {
		case c.ErrorMsg != "":
			parts = append(parts, fmt.Sprintf("failed +%s by %s (%s)", us(c.CompletedUS), c.CompletedBy, c.ErrorMsg))
		case c.CompletedUS >= 0:
			done := fmt.Sprintf("completed +%s by %s", us(c.CompletedUS), c.CompletedBy)
			if n := len(c.Leases); n > 0 {
				done += fmt.Sprintf(" (exec %s)", us(c.CompletedUS-c.Leases[n-1].AtUS))
			}
			parts = append(parts, done)
		case c.Lost:
			parts = append(parts, "lost (retry budget exhausted)")
		default:
			parts = append(parts, "incomplete")
		}
		if c.Duplicates > 0 {
			parts = append(parts, fmt.Sprintf("duplicates ×%d", c.Duplicates))
		}
		where := ""
		if c.Row >= 0 {
			where = fmt.Sprintf(" (row %d, trials [%d,%d))", c.Row, c.Lo, c.Hi)
		}
		fmt.Fprintf(&b, "  %s%s: %s\n", c.ID, where, strings.Join(parts, ", "))
	}
	b.WriteString("\n")
	return b.String()
}

// renderCriticalPath descends from the longest root through the child
// that finished last — the chain that bounded the run's wall clock.
func renderCriticalPath(a *analysis) string {
	if len(a.Roots) == 0 {
		return ""
	}
	longest := a.Roots[0]
	for _, r := range a.Roots[1:] {
		if r.Line.DurUS > longest.Line.DurUS {
			longest = r
		}
	}
	var b strings.Builder
	b.WriteString("critical path: ")
	var names []string
	for n := longest; n != nil; {
		names = append(names, fmt.Sprintf("%s (%s)", n.Line.Name, us(n.Line.DurUS)))
		var last *node
		for _, c := range n.Children {
			if last == nil || c.Line.AtUS+c.Line.DurUS > last.Line.AtUS+last.Line.DurUS {
				last = c
			}
		}
		n = last
	}
	b.WriteString(strings.Join(names, " → "))
	b.WriteString("\n")
	return b.String()
}
