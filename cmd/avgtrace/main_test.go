package main

import (
	"context"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"avgloc/internal/fleet"
	"avgloc/internal/obs"
	"avgloc/internal/scenario"
	"avgloc/internal/twin"
)

// syntheticArtifact builds a small fleet-shaped trace in memory: one run
// with two chunks, one of which is stolen after its first lease dies.
func syntheticArtifact(t *testing.T) string {
	t.Helper()
	var b strings.Builder
	tr := obs.NewTracer(&b, "fleet.campaign", obs.A("key", "deadbeef-s1"))
	run := tr.Span(nil, "fleet.run", obs.A("key", "deadbeef-s1"), obs.A("rows", 1))
	run.Event("chunk.queued", obs.A("chunk", "c0"), obs.A("row", 0), obs.A("lo", 0), obs.A("hi", 8))
	run.Event("chunk.queued", obs.A("chunk", "c1"), obs.A("row", 0), obs.A("lo", 8), obs.A("hi", 16))
	run.Event("chunk.lease", obs.A("chunk", "c0"), obs.A("worker", "w1"))
	run.Event("chunk.lease", obs.A("chunk", "c1"), obs.A("worker", "w2"))
	run.Event("chunk.complete", obs.A("chunk", "c1"), obs.A("worker", "w2"))
	run.Event("chunk.lost", obs.A("chunk", "c0"), obs.A("worker", "w1"))
	run.Event("chunk.requeue", obs.A("chunk", "c0"))
	run.Event("chunk.steal", obs.A("chunk", "c0"), obs.A("worker", "w2"))
	run.Event("chunk.complete", obs.A("chunk", "c0"), obs.A("worker", "w2"))
	m := run.Span("merge", obs.A("chunks", 2))
	m.End()
	run.End()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestReadTraceAndAnalyze(t *testing.T) {
	tr, err := readTrace(strings.NewReader(syntheticArtifact(t)))
	if err != nil {
		t.Fatal(err)
	}
	if tr.header.Name != "fleet.campaign" {
		t.Fatalf("header = %+v", tr.header)
	}
	if len(tr.spans) != 2 || len(tr.events) != 9 {
		t.Fatalf("spans=%d events=%d, want 2/9", len(tr.spans), len(tr.events))
	}

	a := analyze(tr)
	if a.Spans != 2 || a.Events != 9 {
		t.Fatalf("analysis counts: %+v", a)
	}
	if len(a.Roots) != 1 || a.Roots[0].Line.Name != "fleet.run" {
		t.Fatalf("roots = %+v", a.Roots)
	}
	if len(a.Roots[0].Children) != 1 || a.Roots[0].Children[0].Line.Name != "merge" {
		t.Fatalf("tree children = %+v", a.Roots[0].Children)
	}

	if len(a.Chunks) != 2 {
		t.Fatalf("chunks = %+v", a.Chunks)
	}
	c0, c1 := a.Chunks[0], a.Chunks[1]
	if c0.ID != "c0" || c1.ID != "c1" {
		t.Fatalf("chunk order: %s, %s", c0.ID, c1.ID)
	}
	if c0.Row != 0 || c0.Lo != 0 || c0.Hi != 8 {
		t.Fatalf("c0 bounds: %+v", c0)
	}
	if c0.QueuedUS < 0 {
		t.Fatal("c0 queued event not seen")
	}
	if len(c0.Leases) != 2 || c0.Leases[0].Worker != "w1" || !c0.Leases[1].Stolen || c0.Leases[1].Worker != "w2" {
		t.Fatalf("c0 leases: %+v", c0.Leases)
	}
	if c0.Requeues != 1 || !c0.Lost {
		t.Fatalf("c0 requeue/lost: %+v", c0)
	}
	if c0.CompletedBy != "w2" || c0.CompletedUS < 0 {
		t.Fatalf("c0 completion: %+v", c0)
	}
	if len(c1.Leases) != 1 || c1.Leases[0].Stolen {
		t.Fatalf("c1 leases: %+v", c1.Leases)
	}
}

func TestRenderers(t *testing.T) {
	tr, err := readTrace(strings.NewReader(syntheticArtifact(t)))
	if err != nil {
		t.Fatal(err)
	}
	a := analyze(tr)

	sum := renderSummary(a)
	for _, want := range []string{"trace fleet.campaign", "spans 2, events 9", "fleet.run", "merge"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q:\n%s", want, sum)
		}
	}

	wf := renderWaterfall(a)
	// merge is indented under fleet.run.
	if !strings.Contains(wf, "fleet.run") || !strings.Contains(wf, "  merge") {
		t.Errorf("waterfall wrong:\n%s", wf)
	}

	ch := renderChunks(a)
	for _, want := range []string{
		"c0 (row 0, trials [0,8))",
		"leased", "→w1",
		"stolen", "→w2",
		"requeued ×1",
		"completed",
		"c1 (row 0, trials [8,16))",
	} {
		if !strings.Contains(ch, want) {
			t.Errorf("chunk timeline missing %q:\n%s", want, ch)
		}
	}

	cp := renderCriticalPath(a)
	if !strings.Contains(cp, "fleet.run") || !strings.Contains(cp, "→ merge") {
		t.Errorf("critical path wrong:\n%s", cp)
	}
}

func TestReadTraceErrors(t *testing.T) {
	if _, err := readTrace(strings.NewReader(`{"type":"span","name":"x"}`)); err == nil {
		t.Fatal("missing header accepted")
	}
	if _, err := readTrace(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	// Unknown line types are skipped for forward compatibility.
	art := `{"type":"trace","name":"t","start":"2026-01-01T00:00:00Z"}` + "\n" +
		`{"type":"future-thing","name":"x"}` + "\n"
	tr, err := readTrace(strings.NewReader(art))
	if err != nil {
		t.Fatal(err)
	}
	if tr.header.Name != "t" || len(tr.spans) != 0 {
		t.Fatalf("unexpected parse: %+v", tr)
	}
}

// TestFleetArtifactRoundTrip is the acceptance criterion end to end: run a
// real fleet scenario with the flight recorder on, then reconstruct the
// complete chunk timeline from the artifact alone.
func TestFleetArtifactRoundTrip(t *testing.T) {
	var art strings.Builder
	rec := obs.NewTracer(&art, "fleet.roundtrip")
	c := fleet.NewCoordinator(fleet.Config{
		ChunkTrials:      2,
		HeartbeatTimeout: 250 * time.Millisecond,
		StealAfter:       100 * time.Millisecond,
		PollInterval:     10 * time.Millisecond,
		Trace:            rec,
	})
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		w := &fleet.Worker{Base: ts.URL, Parallelism: 2, Poll: 5 * time.Millisecond, Trace: rec}
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.Run(ctx)
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for c.Workers() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("workers never registered")
		}
		time.Sleep(5 * time.Millisecond)
	}

	spec := &scenario.Spec{
		Graph:     "cycle",
		Algorithm: "mis/luby",
		Trials:    6,
		Seed:      9,
		Sweep:     &scenario.Sweep{Param: "n", Values: []float64{24, 40}},
	}
	if _, err := c.RunScenario(context.Background(), spec); err != nil {
		t.Fatalf("RunScenario: %v", err)
	}
	cancel()
	wg.Wait()
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	parsed, err := readTrace(strings.NewReader(art.String()))
	if err != nil {
		t.Fatalf("artifact unreadable: %v", err)
	}
	a := analyze(parsed)
	// 2 rows × 6 trials / 2 per chunk = 6 chunks, each with a full
	// queue → lease → complete lifecycle reconstructed from events alone.
	if len(a.Chunks) != 6 {
		t.Fatalf("reconstructed %d chunks, want 6: %+v", len(a.Chunks), a.Chunks)
	}
	for _, ch := range a.Chunks {
		if ch.QueuedUS < 0 {
			t.Errorf("chunk %s: no queue event", ch.ID)
		}
		if len(ch.Leases) == 0 {
			t.Errorf("chunk %s: no lease", ch.ID)
		}
		if ch.CompletedUS < 0 || ch.CompletedBy == "" {
			t.Errorf("chunk %s: completion not recorded", ch.ID)
		}
		if ch.ErrorMsg != "" {
			t.Errorf("chunk %s: unexpected error %q", ch.ID, ch.ErrorMsg)
		}
	}
	// The run span and its merge child made it into the tree, so the
	// waterfall and critical path render without panicking.
	out := renderSummary(a) + renderWaterfall(a) + renderChunks(a) + renderCriticalPath(a)
	for _, wantStr := range []string{"fleet.run", "merge", "chunk timeline:", "critical path:"} {
		if !strings.Contains(out, wantStr) {
			t.Errorf("rendered output missing %q", wantStr)
		}
	}
}

// TestRenderDispatch pins the typed-header dispatch: a fabricated header
// type is a one-line error, never a fall-through to the trace renderer,
// while load, twin, and trace headers each reach their renderer.
func TestRenderDispatch(t *testing.T) {
	// Unknown header type: explicit error naming the type and the knowns.
	_, err := render([]byte(`{"type":"flux-capacitor","name":"x"}`+"\n"), true, true)
	if err == nil {
		t.Fatal("fabricated header type accepted")
	}
	if !strings.Contains(err.Error(), `unknown artifact header type "flux-capacitor"`) ||
		!strings.Contains(err.Error(), "load, trace, twin") {
		t.Fatalf("error does not name the type and the known types: %v", err)
	}

	// A trace artifact still renders end to end.
	out, err := render([]byte(syntheticArtifact(t)), true, true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "trace fleet.campaign") || !strings.Contains(out, "critical path:") {
		t.Fatalf("trace render drifted:\n%s", out)
	}

	// Headerless garbage keeps the trace reader's named error.
	if _, err := render([]byte(`{"type":"span","name":"x"}`+"\n"), true, true); err == nil ||
		!strings.Contains(err.Error(), "no trace header") {
		t.Fatalf("headerless artifact error = %v", err)
	}
}

// TestRenderTwinArtifact pins the twin path through the dispatcher: a
// written twin artifact renders its measured-vs-predicted plot.
func TestRenderTwinArtifact(t *testing.T) {
	var art strings.Builder
	err := twin.WriteArtifact(&art, "paper", []twin.ArtifactSweep{{
		Scenario: "e10-rand",
		Eval: &twin.SweepEval{
			Algorithm: "mis/luby", Family: "cycle", Measure: "node_avg", Curve: twin.Const,
			Rows: []twin.RowEval{
				{N: 256, Measured: 1.96, Predicted: 1.97, Ratio: 1.96 / 1.97},
				{N: 1024, Measured: 2.10, Predicted: 1.97, Ratio: 2.10 / 1.97},
			},
			MaxAbsLogRatio: 0.09, WorstRow: 1,
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	out, err := render([]byte(art.String()), true, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"twin paper: 1 sweeps", "e10-rand: mis/luby on cycle", "◄ worst"} {
		if !strings.Contains(out, want) {
			t.Fatalf("twin render missing %q:\n%s", want, out)
		}
	}
}
