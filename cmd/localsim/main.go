// Command localsim runs one algorithm on one generated graph and prints
// every complexity measure of Definition 1 and Appendix A.
//
// Usage:
//
//	localsim -graph regular -n 1024 -d 6 -alg mis/luby -trials 5
//	localsim -graph cycle -n 4096 -alg mis/det-coloring
//	localsim -graph regular -n 8192 -d 3 -alg orient/det-averaged
package main

import (
	"flag"
	"fmt"
	"math/rand/v2"
	"os"

	"avgloc/internal/alg/coloring"
	"avgloc/internal/alg/matching"
	"avgloc/internal/alg/mis"
	"avgloc/internal/alg/ruling"
	"avgloc/internal/core"
	"avgloc/internal/graph"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "localsim:", err)
		os.Exit(1)
	}
}

func run() error {
	graphKind := flag.String("graph", "regular", "cycle|path|grid|regular|gnp|torus|hypercube")
	n := flag.Int("n", 1024, "number of nodes (grid/torus: side length; hypercube: dimension)")
	d := flag.Int("d", 6, "degree (regular) or edge probability ×1000 (gnp)")
	algName := flag.String("alg", "mis/luby", "algorithm (see -list)")
	list := flag.Bool("list", false, "list algorithms and exit")
	trials := flag.Int("trials", 3, "independent trials")
	seed := flag.Uint64("seed", 1, "master seed")
	flag.Parse()

	detAvg, detWorst, randMark := core.SinklessRunners()
	algs := map[string]struct {
		runner  core.Runner
		problem core.Problem
	}{
		"mis/luby":         {core.MessagePassing(mis.Luby{}), core.MIS},
		"mis/ghaffari":     {core.MessagePassing(mis.Ghaffari{}), core.MIS},
		"mis/det-coloring": {core.MessagePassing(mis.Det{}), core.MIS},
		"ruling/rand22":    {core.MessagePassing(ruling.Rand22{}), core.RulingSet(2)},
		"ruling/det-logdelta": {
			core.MessagePassing(ruling.Det{Variant: ruling.LogDelta}), core.RulingSet(64),
		},
		"matching/randluby":    {core.MessagePassing(matching.RandLuby{}), core.MaximalMatching},
		"matching/israeliitai": {core.MessagePassing(matching.IsraeliItai{}), core.MaximalMatching},
		"matching/det":         {core.DetMatchingRunner(), core.MaximalMatching},
		"coloring/randgreedy":  {core.MessagePassing(coloring.RandGreedy{}), core.Coloring(1 << 30)},
		"orient/det-averaged":  {detAvg, core.SinklessOrientation},
		"orient/det-worstcase": {detWorst, core.SinklessOrientation},
		"orient/rand-marking":  {randMark, core.SinklessOrientation},
	}
	if *list {
		for name := range algs {
			fmt.Println(name)
		}
		return nil
	}
	entry, ok := algs[*algName]
	if !ok {
		return fmt.Errorf("unknown algorithm %q (use -list)", *algName)
	}

	rng := rand.New(rand.NewPCG(*seed, 99))
	var g *graph.Graph
	switch *graphKind {
	case "cycle":
		g = graph.Cycle(*n)
	case "path":
		g = graph.Path(*n)
	case "grid":
		g = graph.Grid(*n, *n)
	case "torus":
		g = graph.Torus(*n, *n)
	case "hypercube":
		g = graph.Hypercube(*n)
	case "regular":
		g = graph.RandomRegular(*n, *d, rng)
	case "gnp":
		g = graph.GNP(*n, float64(*d)/1000, rng)
	default:
		return fmt.Errorf("unknown graph kind %q", *graphKind)
	}

	rep, err := core.Measure(g, entry.problem, entry.runner, core.MeasureOptions{Trials: *trials, Seed: *seed})
	if err != nil {
		return err
	}
	fmt.Printf("graph:      %s\n", rep.Graph)
	fmt.Printf("algorithm:  %s (problem %s, %d trials)\n", rep.Algorithm, rep.Problem, rep.Trials)
	fmt.Printf("AVG_V:      %.2f\n", rep.NodeAvg)
	fmt.Printf("AVG_E:      %.2f\n", rep.EdgeAvg)
	fmt.Printf("EXP_V:      %.2f\n", rep.ExpNode)
	fmt.Printf("EXP_E:      %.2f\n", rep.ExpEdge)
	fmt.Printf("E[worst]:   %.2f\n", rep.WorstMean)
	fmt.Printf("max worst:  %.2f\n", rep.WorstMax)
	if rep.OneSidedEdgeAvg > 0 {
		fmt.Printf("one-sided AVG_E (footnote 2): %.2f\n", rep.OneSidedEdgeAvg)
	}
	if rep.Messages > 0 {
		fmt.Printf("messages/trial: %.0f\n", rep.Messages)
	}
	return nil
}
