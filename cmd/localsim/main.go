// Command localsim runs one algorithm on one generated graph and prints
// every complexity measure of Definition 1 and Appendix A. Graphs and
// algorithms are resolved by name through internal/registry, so everything
// the library knows is reachable without editing this file.
//
// Usage:
//
//	localsim -graph regular -params n=1024,d=6 -alg mis/luby -trials 5
//	localsim -graph regular -params n=1024,d=6 -alg mis/luby -trials 5 -dist
//	localsim -graph caterpillar -params n=4096,spine=512 -alg mis/det-coloring
//	localsim -graph ba -params n=8192,m=3 -alg matching/randluby
//	localsim -list
//
// -dist additionally prints the completion-time distribution behind the
// averages: exact p50/p90/p99/max quantiles of per-node and per-edge
// expected times, a log₂ histogram, and the across-trial variance of the
// run-level averages.
//
// The legacy -n and -d flags still work for families that declare those
// parameters; -params wins where both are given.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"avgloc/internal/core"
	"avgloc/internal/graphstore"
	"avgloc/internal/measure"
	"avgloc/internal/registry"
	"avgloc/internal/twin"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "localsim:", err)
		os.Exit(1)
	}
}

// parseParams turns "n=1024,d=6" into registry values.
func parseParams(s string) (registry.Values, error) {
	v := registry.Values{}
	if s == "" {
		return v, nil
	}
	for _, kv := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return nil, fmt.Errorf("parameter %q is not key=value", kv)
		}
		x, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("parameter %q: %w", kv, err)
		}
		v[key] = x
	}
	return v, nil
}

// listRegistry prints every graph family (with its parameters) and every
// algorithm entry.
func listRegistry() {
	fmt.Println("graph families:")
	for _, f := range registry.Graphs() {
		var ps []string
		for _, p := range f.Params {
			ps = append(ps, fmt.Sprintf("%s=%g", p.Name, p.Default))
		}
		fmt.Printf("  %-20s %s (defaults: %s)\n", f.Name, f.Doc, strings.Join(ps, ","))
	}
	fmt.Println("algorithms:")
	for _, a := range registry.Algorithms() {
		fmt.Printf("  %-22s %s [problem %s]\n", a.Name, a.Doc, a.Problem)
	}
}

func run() error {
	graphName := flag.String("graph", "regular", "graph family name (see -list)")
	paramsFlag := flag.String("params", "", "graph parameters, e.g. n=1024,d=6")
	n := flag.Int("n", 1024, "legacy shorthand for the n parameter")
	d := flag.Int("d", 6, "legacy shorthand for the d parameter")
	algName := flag.String("alg", "mis/luby", "algorithm name (see -list)")
	list := flag.Bool("list", false, "list registry entries and exit")
	trials := flag.Int("trials", 3, "independent trials")
	seed := flag.Uint64("seed", 1, "master seed")
	parallel := flag.Int("parallel", 1, "trial parallelism (reports are bit-identical at any level)")
	graphCacheDir := flag.String("graph-cache-dir", "", "optional persistent graph artifact directory (shared with avgserve/avgworker; a warm dir skips the generator)")
	dist := flag.Bool("dist", false, "print the completion-time distribution (quantiles, log2 histogram, trial variance)")
	twinFlag := flag.Bool("twin", false, "print the analytical twin's predicted value and the measured/predicted ratio (internal/twin)")
	flag.Parse()

	if *list {
		listRegistry()
		return nil
	}

	fam, err := registry.FindGraph(*graphName)
	if err != nil {
		return err // the registry error lists every available family
	}
	entry, err := registry.FindAlgorithm(*algName)
	if err != nil {
		return err // the registry error lists every available algorithm
	}

	params, err := parseParams(*paramsFlag)
	if err != nil {
		return err
	}
	// Legacy -n/-d conveniences: applied only when the flag was explicitly
	// given (otherwise the family's registry defaults stand), and rejected
	// loudly when the family has no parameter of that name — silently
	// building a different graph than requested would be worse.
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	famHas := func(name string) bool {
		for _, p := range fam.Params {
			if p.Name == name {
				return true
			}
		}
		return false
	}
	for flagName, val := range map[string]float64{"n": float64(*n), "d": float64(*d)} {
		if !explicit[flagName] {
			continue
		}
		if !famHas(flagName) {
			var ps []string
			for _, p := range fam.Params {
				ps = append(ps, p.Name)
			}
			return fmt.Errorf("graph family %q has no parameter %q; use -params (parameters: %s)",
				fam.Name, flagName, strings.Join(ps, ", "))
		}
		if _, ok := params[flagName]; !ok {
			params[flagName] = val
		}
	}

	// The graph comes from the content-addressed store under the same seed
	// pair the direct build always used, so the bytes are unchanged; with
	// -graph-cache-dir a repeat invocation loads the CSR artifact instead of
	// re-running the generator.
	gs := graphstore.Shared()
	if *graphCacheDir != "" {
		if gs, err = graphstore.New(0, *graphCacheDir); err != nil {
			return err
		}
	}
	g, err := gs.Get(context.Background(), fam.Name, params, *seed, 99)
	if err != nil {
		return err
	}

	runner, problem := entry.New()
	rep, err := core.Measure(g, problem, runner, core.MeasureOptions{
		Trials: *trials, Seed: *seed, Parallelism: *parallel,
	})
	if err != nil {
		return err
	}
	fmt.Printf("graph:      %s\n", rep.Graph)
	fmt.Printf("algorithm:  %s (problem %s, %d trials)\n", rep.Algorithm, rep.Problem, rep.Trials)
	fmt.Printf("AVG_V:      %.2f\n", rep.NodeAvg)
	fmt.Printf("AVG_E:      %.2f\n", rep.EdgeAvg)
	fmt.Printf("EXP_V:      %.2f\n", rep.ExpNode)
	fmt.Printf("EXP_E:      %.2f\n", rep.ExpEdge)
	fmt.Printf("E[worst]:   %.2f\n", rep.WorstMean)
	fmt.Printf("max worst:  %.2f\n", rep.WorstMax)
	if rep.OneSidedEdgeAvg > 0 {
		fmt.Printf("one-sided AVG_E (footnote 2): %.2f\n", rep.OneSidedEdgeAvg)
	}
	if rep.Messages > 0 {
		fmt.Printf("messages/trial: %.0f\n", rep.Messages)
	}
	if *dist {
		printDist(&rep.Dist)
	}
	if *twinFlag {
		printTwin(fam, entry.Name, params, g.N(), rep)
	}
	return nil
}

// printTwin prints the analytical twin's prediction beside the measured
// value for every measure the catalogue has a model for. A pair without a
// model is a normal answer, not an error.
func printTwin(fam *registry.GraphFamily, alg string, params registry.Values, n int, rep *core.Report) {
	eff, err := fam.Normalize(params)
	if err != nil {
		eff = params // already validated by the build; defensive
	}
	found := false
	for _, measure := range twin.Measures() {
		m, ok := twin.Lookup(alg, fam.Name, measure)
		if !ok {
			continue
		}
		delta, ok := twin.DeltaOf(fam.Name, eff)
		if !ok {
			continue
		}
		measured, ok := twin.MeasureValue(rep, measure)
		if !ok {
			continue
		}
		found = true
		pred := m.Predict(float64(n), delta)
		if (m.NMin > 0 && float64(n) < m.NMin) || (m.NMax > 0 && float64(n) > m.NMax) {
			fmt.Printf("twin %s:   n=%d outside the model's validity range [%g, %g]\n", measure, n, m.NMin, m.NMax)
			continue
		}
		fmt.Printf("twin %s: predicted %.2f  measured %.2f  ratio %.3f  (%s; %s)\n",
			measure, pred, measured, measured/pred, m.Curve, m.Note)
	}
	if !found {
		fmt.Printf("twin: no model for %s on %s\n", alg, fam.Name)
	}
}

// printDist renders the distribution block of a report: the object behind
// the averages — most nodes finish early, a vanishing tail pays the worst
// case.
func printDist(d *measure.Dist) {
	fmt.Printf("node time quantiles: p50 %.2f  p90 %.2f  p99 %.2f  max %.2f\n",
		d.NodeQ.P50, d.NodeQ.P90, d.NodeQ.P99, d.NodeQ.Max)
	fmt.Printf("edge time quantiles: p50 %.2f  p90 %.2f  p99 %.2f  max %.2f\n",
		d.EdgeQ.P50, d.EdgeQ.P90, d.EdgeQ.P99, d.EdgeQ.Max)
	fmt.Printf("node log2 histogram: %s\n", histString(d.NodeHist))
	fmt.Printf("edge log2 histogram: %s\n", histString(d.EdgeHist))
	fmt.Printf("trial variance:      nodeAvg %.4f  edgeAvg %.4f\n", d.NodeAvgVar, d.EdgeAvgVar)
}

// histString renders non-empty log2 buckets as "[lo,hi):count" pairs.
func histString(h [measure.HistBuckets]int64) string {
	var parts []string
	for i, c := range h {
		if c == 0 {
			continue
		}
		switch {
		case i == 0:
			parts = append(parts, fmt.Sprintf("[0,1):%d", c))
		case i == measure.HistBuckets-1:
			parts = append(parts, fmt.Sprintf("[%d,∞):%d", 1<<(i-1), c))
		default:
			parts = append(parts, fmt.Sprintf("[%d,%d):%d", 1<<(i-1), 1<<i, c))
		}
	}
	if len(parts) == 0 {
		return "(empty)"
	}
	return strings.Join(parts, "  ")
}
