// Command ctgen regenerates the structural artifacts of Section 4:
// Figure 1's cluster tree skeletons CT_0..CT_k, the derived base graphs
// G_k(β) with their Lemma 13 statistics, and random-lift girth statistics
// (Lemma 12 / Corollary 15).
//
// The generated construction is also named in the registry vocabulary
// ("kmw" and "kmw-matching" graph families), and ctgen prints the exact
// scenario-spec JSON for it — paste-able into cmd/localsim, a scenario
// submission to avgserve, or a campaign file. With -json the whole output
// becomes one machine-readable stats document instead of text.
//
// Usage:
//
//	ctgen -k 2 -beta 4 -q 4
//	ctgen -k 1 -beta 4 -q 8 -json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand/v2"
	"os"

	"avgloc/internal/graph"
	"avgloc/internal/lb/basegraph"
	"avgloc/internal/lb/clustertree"
	"avgloc/internal/lb/lift"
	"avgloc/internal/registry"
	"avgloc/internal/scenario"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ctgen:", err)
		os.Exit(1)
	}
}

// graphStats summarizes one constructed graph for the -json document.
type graphStats struct {
	Nodes     int `json:"nodes"`
	Edges     int `json:"edges"`
	MaxDegree int `json:"max_degree"`
	Girth     int `json:"girth"`
}

func statsOf(g *graph.Graph) graphStats {
	return graphStats{Nodes: g.N(), Edges: g.M(), MaxDegree: g.MaxDegree(), Girth: g.Girth()}
}

// statsDoc is the -json output: construction parameters, paste-able
// scenario specs in registry vocabulary, and the measured statistics.
type statsDoc struct {
	K    int    `json:"k"`
	Beta int    `json:"beta"`
	Q    int    `json:"q"`
	Seed uint64 `json:"seed"`
	// Spec/MatchingSpec are scenario fragments for the "kmw" and
	// "kmw-matching" registry families; absent when the parameters fall
	// outside the families' declared bounds.
	Spec         *scenario.Spec `json:"spec,omitempty"`
	MatchingSpec *scenario.Spec `json:"matching_spec,omitempty"`
	SpecNote     string         `json:"spec_note,omitempty"`
	Base         graphStats     `json:"base"`
	// IndependentSetSize is |S(c0)|, the Theorem 16 independent set.
	IndependentSetSize int         `json:"independent_set_size"`
	DegreeBound        int         `json:"degree_bound"` // Lemma 13: 2β^{k+1}
	Lift               *graphStats `json:"lift,omitempty"`
	// ShortCycleFrac[i] is the fraction of lift nodes on a cycle of
	// length ≤ the i-th probed bound (3, 5, 2k+1).
	ShortCycleBounds []int     `json:"short_cycle_bounds,omitempty"`
	ShortCycleFrac   []float64 `json:"short_cycle_frac,omitempty"`
}

// registrySpec renders the construction as a normalized scenario spec of
// the named registry family, proving the parameters are accepted there.
func registrySpec(family string, k, beta, q int, seed uint64) (*scenario.Spec, error) {
	fam, err := registry.FindGraph(family)
	if err != nil {
		return nil, err
	}
	params := registry.Values{"k": float64(k), "beta": float64(beta), "q": float64(q)}
	if _, err := fam.Normalize(params); err != nil {
		return nil, err
	}
	return &scenario.Spec{Graph: family, Params: params, Seed: seed}, nil
}

func run() error {
	k := flag.Int("k", 2, "cluster tree parameter k")
	beta := flag.Int("beta", 4, "cluster size parameter β (even, >= 4)")
	q := flag.Int("q", 4, "random lift order (0 disables the lift)")
	seed := flag.Uint64("seed", 1, "lift seed")
	jsonOut := flag.Bool("json", false, "emit one machine-readable stats document")
	flag.Parse()

	doc := statsDoc{K: *k, Beta: *beta, Q: *q, Seed: *seed}

	if !*jsonOut {
		fmt.Println("Cluster tree skeletons (Figure 1):")
		for kk := 0; kk <= *k; kk++ {
			s, err := clustertree.Build(kk)
			if err != nil {
				return err
			}
			if err := s.Validate(); err != nil {
				return fmt.Errorf("CT_%d invalid: %w", kk, err)
			}
			fmt.Println(s)
		}
	}

	inst, err := basegraph.Build(basegraph.Params{K: *k, Beta: *beta})
	if err != nil {
		return err
	}
	if err := inst.Validate(); err != nil {
		return fmt.Errorf("base graph invalid: %w", err)
	}
	doc.Base = statsOf(inst.G)
	doc.IndependentSetSize = len(inst.Clusters[0])
	doc.DegreeBound = 2 * pow(*beta, *k+1)
	if !*jsonOut {
		fmt.Printf("Base graph G_%d(β=%d): %v\n", *k, *beta, inst.G)
		fmt.Printf("  |S(c0)| = %d (independent set, %.1f%% of all nodes)\n",
			len(inst.Clusters[0]), 100*float64(len(inst.Clusters[0]))/float64(inst.G.N()))
		fmt.Printf("  max degree %d (Lemma 13 bound 2β^{k+1} = %d)\n",
			inst.G.MaxDegree(), doc.DegreeBound)
		for v := range inst.Clusters {
			if v > 4 {
				fmt.Printf("  ... %d more clusters\n", len(inst.Clusters)-v)
				break
			}
			fmt.Printf("  cluster %d: %d nodes, α ≤ %d\n", v, len(inst.Clusters[v]), inst.IndependenceBound(v))
		}
	}

	if *q > 0 {
		rng := rand.New(rand.NewPCG(*seed, 2))
		lifted, err := lift.Random(inst.G, *q, rng)
		if err != nil {
			return err
		}
		if err := lift.IsCoveringMap(inst.G, lifted, *q); err != nil {
			return fmt.Errorf("lift invalid: %w", err)
		}
		ls := statsOf(lifted)
		doc.Lift = &ls
		seen := map[int]bool{}
		for _, l := range []int{3, 5, 2*(*k) + 1} {
			if seen[l] {
				continue
			}
			seen[l] = true
			doc.ShortCycleBounds = append(doc.ShortCycleBounds, l)
			doc.ShortCycleFrac = append(doc.ShortCycleFrac, lift.ShortCycleFraction(lifted, l))
		}
		if !*jsonOut {
			fmt.Printf("Random lift of order %d: %v\n", *q, lifted)
			for i, l := range doc.ShortCycleBounds {
				fmt.Printf("  fraction of nodes on a cycle of length <= %d: %.3f\n", l, doc.ShortCycleFrac[i])
			}
			// Girth is an O(n·m) scan; reuse the values statsOf computed.
			fmt.Printf("  girth: %d (base graph girth: %d)\n", doc.Lift.Girth, doc.Base.Girth)
		}

		// Name the construction in registry vocabulary: the exact spec
		// fragments that reproduce it through localsim, avgserve or a
		// campaign file.
		spec, err := registrySpec("kmw", *k, *beta, *q, *seed)
		if err != nil {
			doc.SpecNote = fmt.Sprintf("outside registry bounds: %v", err)
		} else {
			doc.Spec = spec
			doc.MatchingSpec, _ = registrySpec("kmw-matching", *k, *beta, *q, *seed)
		}
		if !*jsonOut {
			if doc.Spec != nil {
				render := func(s *scenario.Spec) string {
					b, err := json.Marshal(s)
					if err != nil {
						return fmt.Sprintf("%v", err)
					}
					return string(b)
				}
				fmt.Println("Registry vocabulary (paste into a scenario or campaign spec):")
				fmt.Printf("  lifted graph:      %s\n", render(doc.Spec))
				if doc.MatchingSpec != nil {
					fmt.Printf("  doubled matching:  %s\n", render(doc.MatchingSpec))
				}
			} else {
				fmt.Printf("Registry vocabulary: %s\n", doc.SpecNote)
			}
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(doc)
	}
	return nil
}

func pow(b, e int) int {
	out := 1
	for ; e > 0; e-- {
		out *= b
	}
	return out
}
