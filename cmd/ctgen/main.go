// Command ctgen regenerates the structural artifacts of Section 4:
// Figure 1's cluster tree skeletons CT_0..CT_k, the derived base graphs
// G_k(β) with their Lemma 13 statistics, and random-lift girth statistics
// (Lemma 12 / Corollary 15).
//
// Usage:
//
//	ctgen -k 2 -beta 4 -q 4
package main

import (
	"flag"
	"fmt"
	"math/rand/v2"
	"os"

	"avgloc/internal/lb/basegraph"
	"avgloc/internal/lb/clustertree"
	"avgloc/internal/lb/lift"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ctgen:", err)
		os.Exit(1)
	}
}

func run() error {
	k := flag.Int("k", 2, "cluster tree parameter k")
	beta := flag.Int("beta", 4, "cluster size parameter β (even, >= 4)")
	q := flag.Int("q", 4, "random lift order (0 disables the lift)")
	seed := flag.Uint64("seed", 1, "lift seed")
	flag.Parse()

	fmt.Println("Cluster tree skeletons (Figure 1):")
	for kk := 0; kk <= *k; kk++ {
		s, err := clustertree.Build(kk)
		if err != nil {
			return err
		}
		if err := s.Validate(); err != nil {
			return fmt.Errorf("CT_%d invalid: %w", kk, err)
		}
		fmt.Println(s)
	}

	inst, err := basegraph.Build(basegraph.Params{K: *k, Beta: *beta})
	if err != nil {
		return err
	}
	if err := inst.Validate(); err != nil {
		return fmt.Errorf("base graph invalid: %w", err)
	}
	fmt.Printf("Base graph G_%d(β=%d): %v\n", *k, *beta, inst.G)
	fmt.Printf("  |S(c0)| = %d (independent set, %.1f%% of all nodes)\n",
		len(inst.Clusters[0]), 100*float64(len(inst.Clusters[0]))/float64(inst.G.N()))
	fmt.Printf("  max degree %d (Lemma 13 bound 2β^{k+1} = %d)\n",
		inst.G.MaxDegree(), 2*pow(*beta, *k+1))
	for v := range inst.Clusters {
		if v > 4 {
			fmt.Printf("  ... %d more clusters\n", len(inst.Clusters)-v)
			break
		}
		fmt.Printf("  cluster %d: %d nodes, α ≤ %d\n", v, len(inst.Clusters[v]), inst.IndependenceBound(v))
	}

	if *q > 0 {
		rng := rand.New(rand.NewPCG(*seed, 2))
		lifted, err := lift.Random(inst.G, *q, rng)
		if err != nil {
			return err
		}
		if err := lift.IsCoveringMap(inst.G, lifted, *q); err != nil {
			return fmt.Errorf("lift invalid: %w", err)
		}
		fmt.Printf("Random lift of order %d: %v\n", *q, lifted)
		for _, l := range []int{3, 5, 2*(*k) + 1} {
			fmt.Printf("  fraction of nodes on a cycle of length <= %d: %.3f\n",
				l, lift.ShortCycleFraction(lifted, l))
		}
		fmt.Printf("  girth: %d (base graph girth: %d)\n", lifted.Girth(), inst.G.Girth())
	}
	return nil
}

func pow(b, e int) int {
	out := 1
	for ; e > 0; e-- {
		out *= b
	}
	return out
}
